// E10 — substrate micro-benchmarks (google-benchmark):
// the exact neighborhood counters, prefix-sum cube scanning, the simplex,
// Dinic max-flow on transportation graphs, snake pairing, and the
// event-queue/network hot path. These are the primitives every experiment
// above leans on; keeping them fast keeps the whole harness laptop-scale.
#include <benchmark/benchmark.h>

#include "core/omega.h"
#include "flow/dinic.h"
#include "flow/transportation.h"
#include "grid/dense_grid.h"
#include "grid/neighborhood.h"
#include "lp/simplex.h"
#include "online/pairing.h"
#include "online/simulation.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

using namespace cmvrp;

void BM_BallVolumeClosedForm(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(l1_ball_volume(2, r));
}
BENCHMARK(BM_BallVolumeClosedForm)->Arg(10)->Arg(1000)->Arg(100000);

void BM_BoxNeighborhoodDp(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  const std::vector<std::int64_t> sides{64, 64};
  for (auto _ : state)
    benchmark::DoNotOptimize(box_neighborhood_volume(sides, r));
}
BENCHMARK(BM_BoxNeighborhoodDp)->Arg(16)->Arg(256)->Arg(4096);

void BM_NeighborhoodBfs(benchmark::State& state) {
  const std::int64_t r = state.range(0);
  std::vector<Point> t{Point{0, 0}, Point{5, 3}, Point{9, 9}};
  for (auto _ : state)
    benchmark::DoNotOptimize(neighborhood_volume(t, r));
}
BENCHMARK(BM_NeighborhoodBfs)->Arg(4)->Arg(16)->Arg(64);

void BM_OmegaForBox(benchmark::State& state) {
  const Box box = Box::cube(Point{0, 0}, state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(omega_for_box(box, 1e9));
}
BENCHMARK(BM_OmegaForBox)->Arg(4)->Arg(64);

void BM_PrefixSumsBuildAndScan(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  DemandMap d(2);
  for (std::int64_t k = 0; k < n; ++k)
    d.add(Point{rng.next_int(0, n - 1), rng.next_int(0, n - 1)}, 1.0);
  const DenseGrid grid = DenseGrid::from_demand(d);
  for (auto _ : state) {
    const PrefixSums ps(grid);
    benchmark::DoNotOptimize(ps.max_cube_sum(4));
  }
}
BENCHMARK(BM_PrefixSumsBuildAndScan)->Arg(64)->Arg(256);

void BM_SimplexTransportationLp(benchmark::State& state) {
  const std::int64_t span = state.range(0);
  Rng rng(5);
  DemandMap d(2);
  for (int k = 0; k < 6; ++k)
    d.add(Point{rng.next_int(0, span), rng.next_int(0, span)},
          static_cast<double>(rng.next_int(1, 9)));
  for (auto _ : state)
    benchmark::DoNotOptimize(lp_value_at_radius(d, 2));
}
BENCHMARK(BM_SimplexTransportationLp)->Arg(3)->Arg(5);

void BM_DinicTransportationOracle(benchmark::State& state) {
  const std::int64_t count = state.range(0);
  Rng rng(7);
  DemandMap d(2);
  for (std::int64_t k = 0; k < count; ++k)
    d.add(Point{rng.next_int(0, 15), rng.next_int(0, 15)}, 1.0);
  for (auto _ : state) {
    auto r = transportation_feasible(d, 3, 2.0);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_DinicTransportationOracle)->Arg(32)->Arg(128);

void BM_SnakeIndexRoundTrip(benchmark::State& state) {
  const CubePairing pairing(2, Point{0, 0}, state.range(0));
  const Point p{state.range(0) / 2, state.range(0) / 2};
  for (auto _ : state) {
    const auto k = pairing.snake_index(p);
    benchmark::DoNotOptimize(pairing.snake_vertex(Point{0, 0}, k));
  }
}
BENCHMARK(BM_SnakeIndexRoundTrip)->Arg(4)->Arg(64);

void BM_NetworkDelivery(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    Network net(q, Rng(1), 3);
    std::size_t delivered = 0;
    net.set_receiver([&](std::size_t, std::size_t, const Message&) {
      ++delivered;
    });
    for (int i = 0; i < 1000; ++i)
      net.send(static_cast<std::size_t>(i % 7), (i + 1) % 7, QueryMsg{});
    q.run_to_quiescence();
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_NetworkDelivery);

void BM_OnlinePointBurst(benchmark::State& state) {
  std::vector<Job> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back({Point{2, 2}, i});
  for (auto _ : state) {
    OnlineConfig cfg;
    cfg.capacity = 8.0;
    cfg.cube_side = 6;
    cfg.anchor = Point{0, 0};
    cfg.seed = 3;
    OnlineSimulation sim(2, cfg);
    benchmark::DoNotOptimize(sim.run(jobs));
  }
}
BENCHMARK(BM_OnlinePointBurst);

}  // namespace

BENCHMARK_MAIN();
