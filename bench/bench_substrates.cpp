// E10 — substrate micro-benchmarks: neighborhood counters, prefix-sum
// cube scanning, the simplex, Dinic max-flow, snake pairing, and the
// event-queue/network hot path.
// Cases and metrics live in the "substrates" harness suite
// (src/exp/suites.cpp); use --reps 3 for stable timings and --json to
// emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("substrates", argc, argv);
}
