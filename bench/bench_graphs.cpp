// E12 — general graphs (the paper's Chapter 6 open direction): ω* on a
// grid, a walled grid, a torus, and weighted roadways.
// Cases and metrics live in the "graphs" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("graphs", argc, argv);
}
