// E12 — general graphs (the paper's Chapter 6 open direction).
//
// The ω machinery generalized to arbitrary connected graphs, evaluated on
// four topologies with the same demand mass:
//   * plain grid        — must match the lattice code paths exactly,
//   * grid with a wall  — obstacles shrink balls, ω rises,
//   * torus             — no boundary truncation, ω falls at the corner,
//   * weighted roadways — side streets cost 5x, so balls shrink and ω
//     rises; the unit-cost highway row mitigates along one axis.
// No paper numbers exist here; the bench demonstrates the library answers
// the question the paper leaves open, with the grid column as the anchor.
#include <iostream>

#include "core/omega.h"
#include "graph/graph.h"
#include "graph/graph_omega.h"
#include "util/table.h"

int main() {
  using namespace cmvrp;
  std::cout << "E12: omega* on general graphs (extension; grid column "
               "anchors against the lattice implementation).\n";

  const std::int64_t n = 12;
  const Box box = Box::cube(Point{0, 0}, n);

  auto vecify = [](const SpatialGraph& sg, const DemandMap& d) {
    std::vector<double> v(sg.points.size(), 0.0);
    for (const auto& [p, val] : d) {
      auto it = sg.index.find(p);
      if (it != sg.index.end()) v[it->second] = val;
    }
    return v;
  };

  Table t({"demand at", "amount", "grid omega*", "lattice check",
           "walled grid", "torus", "roadways (x5 side cost)"});
  struct Case {
    Point at;
    double amount;
  };
  for (const Case& c : {Case{Point{6, 6}, 60.0}, Case{Point{0, 0}, 60.0},
                        Case{Point{6, 6}, 240.0}}) {
    DemandMap d(2);
    d.set(c.at, c.amount);

    const SpatialGraph grid = make_grid_graph(box);
    // Vertical wall two columns right of the demand, with one gap.
    std::vector<Point> wall;
    for (std::int64_t y = 0; y < n; ++y)
      if (y != n - 1) wall.push_back(Point{c.at[0] + 2, y});
    const SpatialGraph walled = make_grid_with_holes(box, wall);
    const SpatialGraph torus = make_torus(n);
    const SpatialGraph roads =
        make_weighted_roadways(box, {c.at[1]}, /*side_cost=*/5);

    const double w_grid = graph_omega_star_flow(grid.graph, vecify(grid, d));
    const double w_lattice = omega_star_flow(d);
    const double w_wall =
        graph_omega_star_flow(walled.graph, vecify(walled, d));
    const double w_torus =
        graph_omega_star_flow(torus.graph, vecify(torus, d));
    const double w_roads =
        graph_omega_star_flow(roads.graph, vecify(roads, d));

    t.row()
        .cell(c.at.to_string())
        .cell(c.amount, 0)
        .cell(w_grid)
        .cell(w_lattice)
        .cell(w_wall)
        .cell(w_torus)
        .cell(w_roads);
  }
  t.print(std::cout);
  std::cout
      << "\nShape check: interior demand — grid == lattice (anchor) and the "
         "torus matches too; corner demand — the torus beats the grid "
         "(no truncated balls); walls raise omega*; 5x side streets raise "
         "it more (the highway only helps along one row).\n"
         "Note: lattice omega* can dip below the finite grid's when the "
         "infinite lattice offers more suppliers than the n x n box.\n";
  return 0;
}
