// E11 — ablations over the Chapter 3 strategy's design choices (cube
// side, monitoring ring, message delay bound, neighbor radius).
// Sections and metrics live in the "ablations" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("ablations", argc, argv);
}
