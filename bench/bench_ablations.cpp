// E11 — ablations over the Chapter 3 strategy's design choices.
//
// The theory fixes cube side ⌈ω_c⌉, communication radius 2, and the
// monitoring ring; this bench varies each knob independently on one
// workload and reports its real cost/benefit:
//   * cube side: smaller cubes localize searches but shrink the idle pool
//     (more failures at tight capacity); larger cubes pay longer
//     replacement travel and bigger search floods.
//   * monitoring ring: off = silent failures become lost jobs.
//   * message delay bound: protocol outcome must be delay-invariant
//     (correctness), only latency changes.
//   * neighbor radius: radius 1 still connects a cube; radius 3 fattens
//     the flood. Served jobs must be radius-invariant.
#include <iostream>

#include "online/capacity_search.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E11: strategy ablations (smart-dust stream, 200 jobs, "
               "W fixed at 10).\n\n";

  Rng rng(77);
  const Box field(Point{0, 0}, Point{15, 15});
  const auto jobs = smart_dust_stream(field, 200, 0.05, rng);
  const DemandMap demand = demand_of_stream(jobs, 2);
  const OnlineConfig base = [&] {
    OnlineConfig c = default_online_config(demand, 5);
    c.capacity = 10.0;
    return c;
  }();

  auto run_with = [&](OnlineConfig cfg) {
    OnlineSimulation sim(2, cfg);
    sim.run(jobs);
    return sim.metrics();
  };

  std::cout << "Cube side (theory: max(2, ceil(omega_c)) = "
            << base.cube_side << "):\n";
  Table t1({"side", "failed", "replacements", "msgs/job", "max travel+serve"});
  for (std::int64_t side : {2, 3, 4, 6, 8}) {
    OnlineConfig cfg = base;
    cfg.cube_side = side;
    const auto m = run_with(cfg);
    t1.row()
        .cell(side)
        .cell(m.jobs_failed)
        .cell(m.replacements)
        .cell(static_cast<double>(m.network.total()) /
                  static_cast<double>(jobs.size()),
              1)
        .cell(m.max_energy_spent);
  }
  t1.print(std::cout);

  std::cout << "\nMonitoring ring (12 hottest sensors fail silently):\n";
  Table t2({"ring", "failed", "monitor rescues", "heartbeats"});
  for (bool ring : {true, false}) {
    OnlineConfig cfg = base;
    cfg.enable_monitoring = ring;
    OnlineSimulation sim(2, cfg);
    std::vector<Point> hottest = demand.support();
    std::sort(hottest.begin(), hottest.end(),
              [&](const Point& a, const Point& b) {
                if (demand.at(a) != demand.at(b))
                  return demand.at(a) > demand.at(b);
                return a < b;
              });
    for (std::size_t k = 0; k < std::min<std::size_t>(12, hottest.size());
         ++k)
      sim.inject_silent_done(hottest[k]);
    sim.run(jobs);
    const auto& m = sim.metrics();
    t2.row()
        .cell(ring ? "on" : "off")
        .cell(m.jobs_failed)
        .cell(m.monitor_initiations)
        .cell(m.network.heartbeats);
  }
  t2.print(std::cout);

  std::cout << "\nMessage delay bound (served must be invariant):\n";
  Table t3({"max delay", "served", "failed", "events processed proxy"});
  std::uint64_t reference_served = 0;
  for (SimTime delay : {0, 1, 3, 9, 27}) {
    OnlineConfig cfg = base;
    cfg.max_message_delay = delay;
    const auto m = run_with(cfg);
    if (delay == 0) reference_served = m.jobs_served;
    if (m.jobs_served != reference_served) {
      std::cerr << "delay changed the outcome — protocol bug\n";
      return 1;
    }
    t3.row()
        .cell(delay)
        .cell(m.jobs_served)
        .cell(m.jobs_failed)
        .cell(m.network.total());
  }
  t3.print(std::cout);

  std::cout << "\nNeighbor (communication) radius — paper uses 2:\n";
  Table t4({"radius", "served", "failed", "msgs/job"});
  for (std::int64_t radius : {1, 2, 3}) {
    OnlineConfig cfg = base;
    cfg.neighbor_radius = radius;
    const auto m = run_with(cfg);
    t4.row()
        .cell(radius)
        .cell(m.jobs_served)
        .cell(m.jobs_failed)
        .cell(static_cast<double>(m.network.total()) /
                  static_cast<double>(jobs.size()),
              1);
  }
  t4.print(std::cout);

  std::cout << "\nTakeaways: the theory's side = ceil(omega_c) balances "
               "pool size against flood cost; the ring is what makes "
               "silent failures survivable; outcomes are delay- and "
               "radius-invariant (only message counts move).\n";
  return 0;
}
