// E2 — Figure 2.1(b)/2.2, §2.1.2: demand d on every point of a line.
//
// Paper claims:
//   * W·(2W+1) ≥ d is necessary (W₂ = equality), so W₂ ~ sqrt(d/2);
//   * capacity 2W₂ suffices: every vehicle within distance W₂ of the line
//     walks to its nearest line point (Fig 2.2) and serves with what's
//     left. We *execute* that strategy and measure the supply surplus.
#include <cmath>
#include <iostream>

#include "core/closed_forms.h"
#include "core/offline_planner.h"
#include "core/omega.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E2: line demand (Fig 2.1b) and the Fig 2.2 strategy.\n";

  Table t({"d", "W2", "2*W2 strategy supply/point", "covers d?",
           "omega_line(len=256)", "plan max energy"});
  for (double d : {8.0, 32.0, 128.0, 512.0, 2048.0}) {
    const double w2 = example_line_w2(d);
    // Fig 2.2 strategy with capacity 2*W2: each vehicle at offset |y| <= r
    // (r = floor(W2)) reaches the line spending |y| and serves 2W2 - |y|.
    const auto r = static_cast<std::int64_t>(std::floor(w2));
    double supply_per_point = 0.0;
    for (std::int64_t y = -r; y <= r; ++y)
      supply_per_point += 2.0 * w2 - static_cast<double>(std::abs(y));
    const bool covers = supply_per_point + 1e-9 >= d;

    const std::int64_t len = 256;
    const Box line(Point{0, 0}, Point{len - 1, 0});
    const double omega = omega_for_box(line, d * static_cast<double>(len));

    double plan_energy = -1.0;
    if (d <= 512.0) {
      const DemandMap demand = line_demand(64, d, Point{0, 0});
      const OfflinePlan plan = plan_offline(demand);
      const PlanCheck check = verify_plan(plan, demand);
      if (!check.ok) {
        std::cerr << "plan failed: " << check.issue << "\n";
        return 1;
      }
      plan_energy = check.max_energy;
    }
    auto& row = t.row().cell(d, 0).cell(w2).cell(supply_per_point, 1);
    row.cell_bool(covers).cell(omega);
    if (plan_energy >= 0.0)
      row.cell(plan_energy);
    else
      row.cell("-");
    if (!covers) {
      std::cerr << "Fig 2.2 strategy failed to cover d=" << d << "\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: W2 grows as sqrt(d) (W2^2 ~ d/2); the 2*W2 "
               "strategy always covers; omega of a long finite line tracks "
               "W2.\n";
  return 0;
}
