// E2 — Figure 2.1(b)/2.2, §2.1.2: demand d on every point of a line.
// Sweep and metrics live in the "line" harness suite (src/exp/suites.cpp);
// run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("line", argc, argv);
}
