// E15 — streaming engine throughput vs threads and batch size on the
// large-grid stream (bit-identical outcomes at every thread count).
// Scenario and metrics live in the "stream_scaling" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("stream_scaling", argc, argv);
}
