// E8 — Chapter 5: inter-vehicle energy transfers (Thm 5.1.1 bounds, the
// §5.2.1 line collector, and the pooling ablation).
// Sections and metrics live in the "transfer" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("transfer", argc, argv);
}
