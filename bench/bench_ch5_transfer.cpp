// E8 — Chapter 5: inter-vehicle energy transfers.
//
// Part A (Thm 5.1.1): W_trans-off = Θ(Woff) — the relay-decay lower bound
//   and the transfer-free upper bound move together across demand scales.
// Part B (§5.2.1): the line collector's closed forms, fixed and variable
//   accounting, against the exact step-by-step simulation.
// Part C (ablation): pooling inside cubes (snake collector) vs the
//   transfer-free Lemma 2.2.5 plan on skewed demand.
#include <iostream>

#include "core/offline_planner.h"
#include "transfer/cube_collector.h"
#include "transfer/line_collector.h"
#include "transfer/theorem51.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;

  std::cout << "E8a: Theorem 5.1.1 — transfer-aware lower bound vs "
               "transfer-free upper bound (8x8 square demand).\n";
  Table ta({"d/point", "Wtrans lower (Thm 5.1.1)", "Woff upper (Lem 2.2.5)",
            "ratio upper/lower", "binding square side"});
  double prev_ratio = -1.0;
  bool ratios_bounded = true;
  for (double d : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    const DemandMap demand = square_demand(8, d, Point{0, 0});
    const auto b = transfer_bounds(demand);
    const double ratio = b.woff_upper / b.wtrans_lower;
    ratios_bounded = ratios_bounded && ratio < 300.0;
    ta.row()
        .cell(d, 0)
        .cell(b.wtrans_lower)
        .cell(b.woff_upper)
        .cell(ratio, 2)
        .cell(b.binding_side);
    prev_ratio = ratio;
  }
  (void)prev_ratio;
  ta.print(std::cout);
  if (!ratios_bounded) {
    std::cerr << "Theta relationship violated\n";
    return 1;
  }
  std::cout << "Shape check: the ratio stays bounded while demand scales "
               "256x — the two quantities are the same order (Thm 5.1.1)."
               "\n\n";

  std::cout << "E8b: section 5.2.1 line collector, closed forms vs exact "
               "simulation (uniform d per vertex).\n";
  Table tb({"N", "d", "model", "W formula", "W simulated", "sim/formula",
            "peak tank / (N*W)"});
  for (std::int64_t n : {8, 32, 128, 512}) {
    for (double d : {4.0, 32.0}) {
      const std::vector<double> lane(static_cast<std::size_t>(n), d);
      const double total = d * static_cast<double>(n);
      {
        TransferParams p;
        p.model = TransferCostModel::kFixed;
        p.a1 = 1.0;
        const double formula = line_collector_w_fixed(n, total, p.a1);
        const double sim = min_line_collector_w(lane, p);
        const auto trace = simulate_line_collector(lane, sim, p);
        tb.row()
            .cell(n)
            .cell(d, 0)
            .cell("fixed a1=1")
            .cell(formula)
            .cell(sim)
            .cell(sim / formula, 4)
            .cell(trace.max_tank_level /
                      (static_cast<double>(n) * sim),
                  3);
      }
      {
        TransferParams p;
        p.model = TransferCostModel::kVariable;
        p.a2 = 0.01;
        const double formula = line_collector_w_variable(n, total, p.a2);
        const double sim = min_line_collector_w(lane, p);
        const auto trace = simulate_line_collector(lane, sim, p);
        tb.row()
            .cell(n)
            .cell(d, 0)
            .cell("var a2=.01")
            .cell(formula)
            .cell(sim)
            .cell(sim / formula, 4)
            .cell(trace.max_tank_level /
                      (static_cast<double>(n) * sim),
                  3);
      }
    }
  }
  tb.print(std::cout);
  std::cout << "Shape check: W = Theta(avg d); fixed-cost simulation matches "
               "the closed form exactly, variable-cost stays at/below it "
               "(the paper charges every transfer at the full W); the peak "
               "tank is ~N*W — C = infinity is genuinely needed.\n\n";

  std::cout << "E8c: ablation — per-vehicle W with vs without transfers on "
               "skewed demand (one hot vertex in an 8x8 cube).\n";
  Table tc({"hot demand", "no-transfer plan W", "collector W (fixed a1=.5)",
            "collector W (var a2=.01)", "savings factor"});
  for (double hot : {50.0, 200.0, 800.0}) {
    DemandMap d(2);
    d.set(Point{3, 3}, hot);
    const OfflinePlan plan = plan_offline(d);
    TransferParams pf;
    pf.model = TransferCostModel::kFixed;
    pf.a1 = 0.5;
    TransferParams pv;
    pv.model = TransferCostModel::kVariable;
    pv.a2 = 0.01;
    const auto rf = cube_collector_requirements(d, 8, pf);
    const auto rv = cube_collector_requirements(d, 8, pv);
    tc.row()
        .cell(hot, 0)
        .cell(plan.max_energy())
        .cell(rf.required_w)
        .cell(rv.required_w)
        .cell(plan.max_energy() / rf.required_w, 2);
  }
  tc.print(std::cout);
  std::cout << "Shape check: transfers turn max-demand into avg-demand — "
               "the savings factor grows with the skew (§5.2's point).\n";
  return 0;
}
