// E6 — Theorem 1.4.2: Won = Θ(Woff), via the Chapter 3 strategy.
//
// For each workload we bisect the minimal capacity at which the
// distributed strategy serves the whole stream (empirical Won), and print
// it against the offline lower bound ω_c and Lemma 3.3.1's upper bound
// (4·3^ℓ+ℓ)·ω_c. The paper's claim is that the ratio Won/ω_c is bounded
// by a constant across workloads; we also report protocol cost (messages
// per job, replacements) at the minimal capacity.
#include <iostream>
#include <string>
#include <vector>

#include "core/cube_bound.h"
#include "online/capacity_search.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generators.h"

int main() {
  using namespace cmvrp;
  std::cout << "E6: Theorem 1.4.2 — empirical Won vs offline bounds "
               "(l = 2, Lemma 3.3.1 factor 4*3^2+2 = 38).\n";

  struct Case {
    std::string name;
    std::vector<Job> jobs;
  };
  std::vector<Case> cases;
  {
    Rng rng(201), order(202);
    const DemandMap d =
        uniform_demand(Box(Point{0, 0}, Point{9, 9}), 80, rng);
    cases.push_back(
        {"uniform 80 on 10x10",
         stream_from_demand(d, ArrivalOrder::kShuffled, order)});
  }
  {
    Rng rng(203), order(204);
    const DemandMap d =
        clustered_demand(Box(Point{0, 0}, Point{11, 11}), 2, 90, 1.2, rng);
    cases.push_back(
        {"clustered 90 (2 hotspots)",
         stream_from_demand(d, ArrivalOrder::kShuffled, order)});
  }
  {
    Rng order(205);
    const DemandMap d = line_demand(12, 8.0, Point{0, 0});
    cases.push_back({"line 12 x d=8 (round-robin)",
                     stream_from_demand(d, ArrivalOrder::kRoundRobin, order)});
  }
  {
    std::vector<Job> jobs;
    for (int i = 0; i < 120; ++i) jobs.push_back({Point{4, 4}, i});
    cases.push_back({"point burst 120", jobs});
  }
  {
    Rng rng(206);
    cases.push_back({"smart dust 150",
                     smart_dust_stream(Box(Point{0, 0}, Point{11, 11}), 150,
                                       0.05, rng)});
  }

  Table t({"workload", "omega_c", "Won empirical", "Won theory (38*w_c)",
           "Won/omega_c", "msgs/job @min", "replacements @min"});
  double worst_ratio = 0.0;
  for (const auto& c : cases) {
    const auto r = find_min_online_capacity(c.jobs, 2, /*seed=*/5, 0.1);
    const double ratio = r.won_empirical / std::max(r.omega_c, 1e-9);
    worst_ratio = std::max(worst_ratio, ratio);
    const double msgs_per_job =
        static_cast<double>(r.at_minimum.network.total()) /
        static_cast<double>(c.jobs.size());
    if (r.won_empirical > r.won_theory + 0.2) {
      std::cerr << c.name << ": empirical exceeded the theorem bound\n";
      return 1;
    }
    t.row()
        .cell(c.name)
        .cell(r.omega_c)
        .cell(r.won_empirical)
        .cell(r.won_theory)
        .cell(ratio, 2)
        .cell(msgs_per_job, 1)
        .cell(r.at_minimum.replacements);
  }
  t.print(std::cout);
  std::cout << "\nShape check: Won always below the Lemma 3.3.1 bound and "
               "within a bounded factor of omega_c (worst ratio here: "
            << worst_ratio
            << "; unit-job granularity inflates tiny-omega_c workloads).\n";
  return 0;
}
