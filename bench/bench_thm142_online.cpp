// E6 — Theorem 1.4.2: Won = Θ(Woff), via the Chapter 3 strategy.
// Scenario list and metrics live in the "online" harness suite
// (src/exp/suites.cpp); run with --json to emit BENCH JSON.
#include "exp/harness.h"

int main(int argc, char** argv) {
  return cmvrp::bench_driver_main("online", argc, argv);
}
