// cmvrp — command-line front end.
//
//   cmvrp bounds   --file demand.txt [--dim 2]            offline bounds
//   cmvrp plan     --file demand.txt [--ascii]            Lemma 2.2.5 plan
//   cmvrp online   --file demand.txt [--capacity W]       run the strategy
//                  [--order sorted|shuffled|roundrobin] [--seed S]
//   cmvrp won      --file demand.txt [--tol T]            bisect minimal W
//   cmvrp gen      --workload uniform|clustered|line|point|square
//                  [--n N] [--count C] [--d D] [--seed S]  emit a demand file
//   cmvrp fig41    --r1 R                                 Chapter 4 example
//   cmvrp stream   [--scenario NAME | --file demand.txt | --trace t.bin]
//                  [--threads T] [--batch B] [--jobs J] [--n N] [--order o]
//                  [--capacity W] [--side S] [--seed S] [--json PATH]
//                  [--record out.trace] [--monitor-stride K]
//                  [--admission unbounded|reject|shed] [--queue-limit Q]
//                  [--service-ticks D] [--sample-stride K]
//                  [--obs] [--stats s.jsonl] [--stats-stride K]
//                  [--trace-spans f.json|f.bin] [--span-sample K] [--flight N]
//   cmvrp record   --out outcomes.trace [stream flags]    serve + audit trail
//   cmvrp trace    gen --out t.bin --generator g [--dim L] [--count N] ...
//                  | info --file t.bin
//                  | replay --file t.bin [--threads T] [--memory] ...
//                  | mux t1.bin t2.bin ... [--threads T] [--record o.trace]
//   cmvrp stats    --file s.jsonl [--top K]   summarize a stats snapshot
//   cmvrp prof     --file spans.bin|spans.json [--top K]  span-trace analyzer
//   cmvrp compare  A B [--kind auto|stream|stats|bench|spans]
//                  [--warn-ratio R] [--fail-ratio R] [--ignore k1,k2]
//                  [--json diff.json]      structural artifact diff
//   cmvrp bench    --suite NAME [--reps N] [--warmup N]   experiment suites
//                  [--filter S] [--json PATH]
//                  [--baseline B.json [--diff-json d.json]]
//                  | --list | --scenarios
//
// Demand files: lines of "x y demand" (see src/workload/io.h); traces are
// the binary cmvrp-trace-v1/v2 formats (src/trace/format.h) — v2 carries
// per-record event kinds (arrivals, silent-done failure markers, serving
// outcomes), which is what `record` writes and `trace mux` merges.
//
// Exit codes are uniform across subcommands: 0 success, 1 data or drift
// failure (bad input files, failed jobs, comparator drift), 2 usage
// (malformed flags — usage_error from util/check.h).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "broken/scenario.h"
#include "core/algorithm1.h"
#include "core/bounds.h"
#include "core/offline_planner.h"
#include "exp/harness.h"
#include "util/json.h"
#include "exp/scenario.h"
#include "exp/suites.h"
#include "obs/compare.h"
#include "obs/counters.h"
#include "obs/prof.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/span_export.h"
#include "online/capacity_search.h"
#include "record/mux.h"
#include "record/recorder.h"
#include "stream/engine.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "util/digest.h"
#include "util/table.h"
#include "util/timer.h"
#include "viz/ascii.h"
#include "workload/generators.h"
#include "workload/io.h"
#include "workload/stream_gen.h"

namespace {

using namespace cmvrp;

// CLI-side precondition: a malformed or missing flag is a *usage* error
// (exit 2), unlike data that turned out to be bad (check_error, exit 1).
// Streams its message like CMVRP_CHECK_MSG.
#define CLI_USAGE_CHECK(expr, msg)               \
  do {                                           \
    if (!(expr)) {                               \
      std::ostringstream cli_usage_os_;          \
      cli_usage_os_ << msg;                      \
      throw usage_error(cli_usage_os_.str());    \
    }                                            \
  } while (0)

struct Args {
  std::string command;
  std::vector<std::string> positional;  // non-flag tokens ("trace gen ...")
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw usage_error("--" + key + " needs a number, got \"" + it->second +
                        "\"");
    }
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (const std::exception&) {
      throw usage_error("--" + key + " needs an integer, got \"" +
                        it->second + "\"");
    }
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "true";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

DemandMap demand_from_args(const Args& args) {
  const int dim = static_cast<int>(args.get_int("dim", 2));
  CLI_USAGE_CHECK(args.has("file"), "--file <demand.txt> is required");
  return load_demand_file(args.get("file", ""), dim);
}

int cmd_bounds(const Args& args) {
  const DemandMap d = demand_from_args(args);
  CMVRP_CHECK_MSG(!d.empty(), "demand file is empty");
  const Box bb = d.bounding_box();
  const OffBounds b = offline_bounds(d, static_cast<double>(bb.volume()));
  Table t({"quantity", "value"});
  t.row().cell("dimension").cell(static_cast<std::int64_t>(d.dim()));
  t.row().cell("support size").cell(static_cast<std::uint64_t>(d.support_size()));
  t.row().cell("total demand").cell(d.total());
  t.row().cell("max demand D").cell(b.max_demand);
  t.row().cell("avg demand (bbox)").cell(b.avg_demand);
  t.row().cell("omega_c (Cor 2.2.7 lower bound)").cell(b.omega_c);
  t.row().cell("Woff upper (Lem 2.2.5)").cell(b.upper);
  t.row().cell("plan max energy (realized)").cell(b.plan_energy);
  t.print(std::cout);
  return 0;
}

int cmd_plan(const Args& args) {
  const DemandMap d = demand_from_args(args);
  const OfflinePlan plan = plan_offline(d);
  const PlanCheck check = verify_plan(plan, d);
  std::cout << "cube side: " << plan.bound.cube_side
            << "  omega_c: " << plan.bound.omega_c
            << "  in-place budget: " << plan.in_place_budget << "\n";
  std::cout << "vehicles used: " << plan.assignments.size()
            << "  max energy: " << check.max_energy
            << "  verified: " << (check.ok ? "yes" : check.issue.c_str())
            << "\n";
  if (args.has("ascii") && d.dim() == 2) {
    std::cout << "\nplan ('o' serve in place, '>' relocates, '*' target):\n"
              << render_plan(plan, d.bounding_box());
  }
  return check.ok ? 0 : 1;
}

ArrivalOrder order_from_args(const Args& args) {
  const std::string order_name = args.get("order", "shuffled");
  if (order_name == "sorted") return ArrivalOrder::kSorted;
  if (order_name == "roundrobin") return ArrivalOrder::kRoundRobin;
  CLI_USAGE_CHECK(order_name == "shuffled",
                  "--order must be sorted, shuffled, or roundrobin; got "
                      << order_name);
  return ArrivalOrder::kShuffled;
}

int cmd_online(const Args& args) {
  const DemandMap d = demand_from_args(args);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const auto jobs = stream_from_demand(d, order_from_args(args), rng);

  OnlineConfig cfg = default_online_config(
      d, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  if (args.has("capacity")) cfg.capacity = args.get_double("capacity", 0.0);
  OnlineSimulation sim(d.dim(), cfg);
  const bool ok = sim.run(jobs);
  const auto& m = sim.metrics();
  Table t({"metric", "value"});
  t.row().cell("capacity W").cell(cfg.capacity);
  t.row().cell("cube side").cell(cfg.cube_side);
  t.row().cell("jobs served").cell(m.jobs_served);
  t.row().cell("jobs failed").cell(m.jobs_failed);
  t.row().cell("replacements").cell(m.replacements);
  t.row().cell("diffusing computations").cell(m.computations_started);
  t.row().cell("messages total").cell(m.network.total());
  t.row().cell("max energy spent").cell(m.max_energy_spent);
  t.print(std::cout);
  return ok ? 0 : 1;
}

int cmd_won(const Args& args) {
  const DemandMap d = demand_from_args(args);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const auto jobs = stream_from_demand(d, ArrivalOrder::kShuffled, rng);
  const auto r = find_min_online_capacity(
      jobs, d.dim(), static_cast<std::uint64_t>(args.get_int("seed", 1)),
      args.get_double("tol", 0.1));
  Table t({"quantity", "value"});
  t.row().cell("omega_c").cell(r.omega_c);
  t.row().cell("Won empirical").cell(r.won_empirical);
  t.row().cell("Won theory (Lem 3.3.1)").cell(r.won_theory);
  t.row().cell("simulations run").cell(r.simulations);
  t.print(std::cout);
  return 0;
}

int cmd_gen(const Args& args) {
  const std::string kind = args.get("workload", "uniform");
  const std::int64_t n = args.get_int("n", 16);
  const std::int64_t count = args.get_int("count", 100);
  const double dval = args.get_double("d", 10.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Box box(Point{0, 0}, Point{n - 1, n - 1});
  DemandMap d(2);
  if (kind == "uniform") d = uniform_demand(box, count, rng);
  else if (kind == "clustered") d = clustered_demand(box, 3, count, 2.0, rng);
  else if (kind == "line") d = line_demand(n, dval, Point{0, 0});
  else if (kind == "point") d = point_demand(dval, Point{n / 2, n / 2});
  else if (kind == "square") d = square_demand(n / 2, dval, Point{0, 0});
  else CLI_USAGE_CHECK(false, "unknown --workload: " << kind);
  save_demand(std::cout, d);
  return 0;
}

int cmd_fig41(const Args& args) {
  const std::int64_t r1 = args.get_int("r1", 8);
  const auto s = make_fig41(r1, args.get_int("r2", 4 * r1 + 2));
  const auto m = measure_fig41(s);
  Table t({"quantity", "value"});
  t.row().cell("r1").cell(r1);
  t.row().cell("LP bound (Thm 4.1.1)").cell(m.lp_bound);
  t.row().cell("paper travel formula").cell(m.paper_travel);
  t.row().cell("true requirement").cell(m.true_requirement);
  t.row().cell("ratio").cell(m.ratio);
  t.print(std::cout);
  return 0;
}

// Served/failed *set* digests (util/digest.h) let two stream reports be
// diffed for set equality without embedding the full index lists, and
// let a report be audited against an on-disk outcome trace.
std::string index_set_hash(const std::vector<std::int64_t>& indices) {
  return digest_hex(index_set_digest(indices));
}

const char* admission_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kUnbounded:
      return "unbounded";
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kShed:
      return "shed";
  }
  return "unknown";
}

// Shared report for `stream` and `trace replay`: ASCII table plus the
// cmvrp-stream-v3 JSON artifact (v2 added admission config echo, shed /
// rejected counts and hash, latency percentiles + digest, and the
// timeseries summary; v3 adds the Tier-A counter totals — messages by
// kind, Phase I computation counts, cascade stats, admission gauges,
// one counters_hash — plus Tier-B stage spans, which carry the *_ms /
// wall_* naming the CI exclusion list strips). Exit code 0 iff no job
// failed or was dropped.
int report_stream(const Args& args, const StreamConfig& cfg,
                  const StreamResult& r, double ms) {
  const double jobs_per_sec =
      ms > 0.0 ? 1000.0 * static_cast<double>(r.jobs_ingested) / ms : 0.0;

  Table t({"metric", "value"});
  t.row().cell("threads").cell(static_cast<std::int64_t>(cfg.threads));
  t.row().cell("batch size").cell(cfg.batch_size);
  t.row().cell("monitor stride").cell(cfg.online.monitor_stride);
  t.row().cell("capacity W").cell(cfg.online.capacity);
  t.row().cell("cube side").cell(cfg.online.cube_side);
  t.row().cell("admission").cell(admission_name(cfg.online.admission));
  t.row().cell("jobs").cell(r.jobs_ingested);
  t.row().cell("batches").cell(r.batches);
  t.row().cell("cubes").cell(r.cubes);
  t.row().cell("cube slots").cell(static_cast<std::int64_t>(r.cube_slots));
  t.row()
      .cell("routing passes")
      .cell(std::to_string(r.routed_parallel_batches) + " parallel / " +
            std::to_string(r.routed_serial_batches) + " serial");
  t.row().cell("routing ms").cell(r.routing_ms);
  t.row().cell("served").cell(r.metrics.jobs_served);
  t.row().cell("failed").cell(r.metrics.jobs_failed);
  t.row().cell("shed").cell(r.jobs_shed);
  t.row().cell("rejected").cell(r.jobs_rejected);
  t.row().cell("latency p50").cell(r.latency.percentile(50.0));
  t.row().cell("latency p90").cell(r.latency.percentile(90.0));
  t.row().cell("latency p99").cell(r.latency.percentile(99.0));
  t.row().cell("latency max").cell(r.latency.observed_max());
  t.row().cell("replacements").cell(r.metrics.replacements);
  t.row().cell("messages total").cell(r.metrics.network.total());
  const double mpr =
      r.counters.replacements == 0
          ? 0.0
          : static_cast<double>(r.counters.messages_total()) /
                static_cast<double>(r.counters.replacements);
  t.row().cell("messages/replacement").cell(mpr);
  if (cfg.online.obs.counters) {
    t.row().cell("max queries/computation").cell(
        r.counters.max_queries_per_comp);
    t.row().cell("cascade p99").cell(r.counters.cascade.percentile(99.0));
  }
  if (cfg.online.obs.spans) {
    t.row().cell("span records").cell(r.counters.spans_emitted);
    t.row().cell("spans sampled out").cell(r.counters.spans_sampled_out);
    t.row().cell("span ring evictions").cell(r.counters.spans_ring_evicted);
  }
  t.row().cell("max energy spent").cell(r.metrics.max_energy_spent);
  t.row().cell("wall ms").cell(ms);
  t.row().cell("jobs/sec").cell(jobs_per_sec);
  t.print(std::cout);

  if (args.has("json")) {
    Json doc = Json::object();
    doc.set("schema", "cmvrp-stream-v3");
    doc.set("threads", static_cast<std::int64_t>(cfg.threads));
    doc.set("batch_size", cfg.batch_size);
    doc.set("monitor_stride", cfg.online.monitor_stride);
    doc.set("capacity", cfg.online.capacity);
    doc.set("cube_side", cfg.online.cube_side);
    doc.set("seed", static_cast<std::uint64_t>(cfg.online.seed));
    doc.set("admission", admission_name(cfg.online.admission));
    doc.set("queue_limit", cfg.online.queue_limit);
    doc.set("service_ticks", cfg.online.service_ticks);
    doc.set("sample_stride", cfg.online.sample_stride);
    doc.set("jobs", r.jobs_ingested);
    doc.set("batches", r.batches);
    doc.set("cubes", r.cubes);
    doc.set("cube_slots", static_cast<std::int64_t>(r.cube_slots));
    doc.set("routed_parallel_batches", r.routed_parallel_batches);
    doc.set("routed_serial_batches", r.routed_serial_batches);
    doc.set("routing_ms", r.routing_ms);
    doc.set("served", r.metrics.jobs_served);
    doc.set("failed", r.metrics.jobs_failed);
    doc.set("shed", r.jobs_shed);
    doc.set("rejected", r.jobs_rejected);
    doc.set("served_hash", index_set_hash(r.served_jobs));
    doc.set("failed_hash", index_set_hash(r.failed_jobs));
    doc.set("shed_hash", index_set_hash(r.shed_jobs));
    doc.set("latency_count", r.latency.count());
    doc.set("latency_p50", r.latency.percentile(50.0));
    doc.set("latency_p90", r.latency.percentile(90.0));
    doc.set("latency_p99", r.latency.percentile(99.0));
    doc.set("latency_max", r.latency.observed_max());
    doc.set("latency_hash", digest_hex(r.latency.digest()));
    doc.set("ts_cubes", r.timeseries.cubes_sampled);
    doc.set("ts_samples", r.timeseries.samples);
    doc.set("ts_max_queue_depth", r.timeseries.max_queue_depth);
    doc.set("ts_max_occupancy_pm", r.timeseries.max_occupancy_pm);
    doc.set("ts_hash", digest_hex(r.timeseries.digest));
    doc.set("replacements", r.metrics.replacements);
    doc.set("messages", r.metrics.network.total());
    // v3 Tier-A counter totals (deterministic, guarded by the CI
    // counter-diff): messages by kind, Phase I computations, cascade
    // stats, admission gauges, and one order-invariant hash over all of
    // them. The obs-gated fields are zero when obs_counters is false.
    doc.set("obs_counters", cfg.online.obs.counters);
    doc.set("msg_queries", r.counters.msg_queries);
    doc.set("msg_replies", r.counters.msg_replies);
    doc.set("msg_moves", r.counters.msg_moves);
    doc.set("msg_heartbeats", r.counters.msg_heartbeats);
    doc.set("msg_heartbeat_skips", r.counters.msg_heartbeat_skips);
    doc.set("comps_started", r.counters.comps_started);
    doc.set("comps_finished", r.counters.comps_finished);
    doc.set("comps_failed", r.counters.comps_failed);
    doc.set("monitor_initiations", r.counters.monitor_initiations);
    doc.set("max_queries_per_comp", r.counters.max_queries_per_comp);
    doc.set("enqueued", r.counters.enqueued);
    doc.set("backlog_peak", r.counters.backlog_peak);
    // Tier-C span bookkeeping (deterministic like the counters above;
    // all zero unless --trace-spans turned the recorders on).
    doc.set("obs_spans", cfg.online.obs.spans);
    doc.set("span_sample", cfg.online.obs.span_sample);
    doc.set("flight", cfg.online.obs.flight);
    doc.set("spans_emitted", r.counters.spans_emitted);
    doc.set("spans_sampled_out", r.counters.spans_sampled_out);
    doc.set("spans_ring_evicted", r.counters.spans_ring_evicted);
    doc.set("cascade_count", r.counters.cascade.count());
    doc.set("cascade_p50", r.counters.cascade.percentile(50.0));
    doc.set("cascade_p99", r.counters.cascade.percentile(99.0));
    doc.set("cascade_max", r.counters.cascade.observed_max());
    doc.set("cascade_hash", digest_hex(r.counters.cascade.digest()));
    doc.set("messages_per_replacement", mpr);
    doc.set("counters_hash", digest_hex(r.counters.digest()));
    doc.set("max_energy", r.metrics.max_energy_spent);
    // Tier-B wall spans (nondeterministic by design; the *_ms suffix /
    // wall_ prefix keeps them out of the CI round-trip diffs).
    doc.set("stage_ingest_ms", r.stages.ingest_ms);
    doc.set("stage_route_ms", r.stages.route_ms);
    doc.set("stage_serve_ms", r.stages.serve_ms);
    doc.set("stage_fold_ms", r.stages.fold_ms);
    doc.set("stage_monitor_ms", r.stages.monitor_ms);
    doc.set("wall_ms", ms);
    doc.set("jobs_per_sec", jobs_per_sec);
    std::ofstream out(args.get("json", ""));
    CMVRP_CHECK_MSG(out.good(), "cannot open --json path");
    out << doc.dump(2) << "\n";
    out.flush();
    CMVRP_CHECK_MSG(out.good(), "failed writing --json artifact");
  }
  return r.metrics.jobs_failed == 0 && r.jobs_shed == 0 &&
                 r.jobs_rejected == 0
             ? 0
             : 1;
}

// Engine config shared by `stream` and `trace replay`: explicit
// --capacity/--side, or (default) the theory config sized from the
// stream's induced demand — produced lazily so the trace path only pays
// its extra bounded pass over the mapping when it is actually needed.
StreamConfig stream_config_from_args(
    const Args& args, int dim, const std::function<DemandMap()>& demand) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  StreamConfig cfg;
  cfg.threads = static_cast<int>(args.get_int("threads", 1));
  cfg.batch_size = args.get_int("batch", 256);
  cfg.online.seed = seed;
  if (args.has("capacity") || args.has("side")) {
    cfg.online.capacity = args.get_double("capacity", 32.0);
    cfg.online.cube_side = args.get_int("side", 4);
    cfg.online.anchor = Point::origin(dim);
  } else {
    // One demand pass sizes the theory config AND hands the engine its
    // region geometry: cubes intersecting the demand bounding box get
    // dense slots (flat-state routing); stragglers outside still serve
    // via the corner-hashed overflow path with identical outcomes.
    const DemandMap d = demand();
    cfg.online = default_online_config(d, seed);
    cfg.region = d.bounding_box();
  }
  // Monitoring amortization (outcome-preserving on failure-free streams;
  // failure detection latency <= stride arrivals per cube). 1 = sweep
  // after every arrival, the legacy cadence.
  cfg.online.monitor_stride = args.get_int("monitor-stride", 1);
  // Admission control (stream/shard.h): --admission unbounded|reject|shed
  // with --queue-limit waiting slots and --service-ticks arrival-clock
  // ticks per service. Default unbounded = the historical serve path.
  const std::string admission = args.get("admission", "unbounded");
  if (admission == "unbounded") {
    cfg.online.admission = AdmissionPolicy::kUnbounded;
  } else if (admission == "reject") {
    cfg.online.admission = AdmissionPolicy::kReject;
  } else if (admission == "shed") {
    cfg.online.admission = AdmissionPolicy::kShed;
  } else {
    CLI_USAGE_CHECK(false, "--admission must be unbounded, reject, or shed; "
                           "got "
                               << admission);
  }
  cfg.online.queue_limit = args.get_int("queue-limit", 8);
  cfg.online.service_ticks = args.get_int("service-ticks", 4);
  // Timeseries sampling cadence (0 = off): every stride-th arrival per
  // cube records backlog depth + fleet occupancy.
  cfg.online.sample_stride = args.get_int("sample-stride", 0);
  // Tier-A observability counters (src/obs/): per-computation query
  // attribution, cascade histogram, admission gauges. Off by default —
  // turning it on cannot change serving outcomes, only the report.
  cfg.online.obs.counters = args.has("obs");
  // Tier-C causal span tracing (src/obs/span.h): --trace-spans FILE turns
  // the per-cube recorders on (.json = Chrome trace events, anything else
  // = the binary spool `prof` reads); --span-sample K traces every K-th
  // computation per cube; --flight N keeps only the last N records per
  // cube and dumps them post-mortem instead of exporting every run.
  if (args.has("trace-spans")) {
    CLI_USAGE_CHECK(args.get("trace-spans", "") != "true",
                    "--trace-spans needs a file path");
    cfg.online.obs.spans = true;
  }
  CLI_USAGE_CHECK(!args.has("span-sample") || cfg.online.obs.spans,
                  "--span-sample needs --trace-spans");
  CLI_USAGE_CHECK(!args.has("flight") || cfg.online.obs.spans,
                  "--flight needs --trace-spans");
  cfg.online.obs.span_sample = args.get_int("span-sample", 1);
  CLI_USAGE_CHECK(cfg.online.obs.span_sample >= 1,
                  "--span-sample must be >= 1, got "
                      << cfg.online.obs.span_sample);
  cfg.online.obs.flight = args.get_int("flight", 0);
  CLI_USAGE_CHECK(cfg.online.obs.flight >= 0,
                  "--flight must be >= 0, got " << cfg.online.obs.flight);
  return cfg;
}

// --stats FILE [--stats-stride K]: a JSONL StatsSnapshotter
// (cmvrp-stats-v1) attached to the engine for the run's lifetime.
class StatsFile {
 public:
  explicit StatsFile(const Args& args) {
    // Reject a bad stride at parse time — before the early return (it is
    // a usage error with or without --stats) and before the truncating
    // open below, so a typo'd flag cannot clobber an existing snapshot.
    const std::int64_t stride = args.get_int("stats-stride", 16);
    CLI_USAGE_CHECK(stride >= 1,
                    "--stats-stride must be >= 1, got " << stride);
    if (!args.has("stats")) return;
    CLI_USAGE_CHECK(args.get("stats", "") != "true",
                    "--stats needs a file path");
    out_.open(args.get("stats", ""));
    CMVRP_CHECK_MSG(out_.good(), "cannot open --stats path");
    snapshotter_.emplace(out_, stride);
  }

  StatsSnapshotter* get() { return snapshotter_ ? &*snapshotter_ : nullptr; }

  // Flush + verify after the final line (full-disk writes fail loudly).
  void close(const Args& args) {
    if (!snapshotter_) return;
    out_.flush();
    CMVRP_CHECK_MSG(out_.good(), "failed writing --stats JSONL");
    std::cout << "wrote " << snapshotter_->lines_written()
              << " stats lines (" << kStatsSchema << ") to "
              << args.get("stats", "") << "\n";
  }

 private:
  std::ofstream out_;
  std::optional<StatsSnapshotter> snapshotter_;
};

// --trace-spans FILE [--span-sample K] [--flight N]: Tier-C span export
// (src/obs/span_export.h). Full-trace mode writes the file after every
// run; flight mode (--flight N > 0) keeps only the per-cube rings and
// writes the file only for post-mortems — a failed run or a thrown
// check_error mid-serve.
class SpanFile {
 public:
  SpanFile(const Args& args, int dim)
      : dim_(dim),
        path_(args.get("trace-spans", "")),
        flight_only_(args.get_int("flight", 0) > 0) {}

  // After a completed run; `run_ok` is the report's success bit.
  void finish(const StreamEngine& engine, double wall_ms, bool run_ok) {
    if (path_.empty()) return;
    if (flight_only_ && run_ok) {
      std::cout << "flight recorder: run clean, no span dump (" << path_
                << " not written)\n";
      return;
    }
    write(engine, wall_ms);
  }

  // From a catch block: best-effort post-mortem dump — a failure here
  // must not mask the exception already in flight.
  void dump_on_error(const StreamEngine& engine) {
    if (path_.empty()) return;
    try {
      write(engine, 0.0);
    } catch (...) {
      std::cerr << "warning: span post-mortem dump to " << path_
                << " failed\n";
    }
  }

 private:
  void write(const StreamEngine& engine, double wall_ms) {
    const std::vector<CubeSpanSource> sources = engine.span_sources();
    std::uint64_t records = 0;
    for (const CubeSpanSource& s : sources) records += s.recorder->stored();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    CMVRP_CHECK_MSG(out.good(), "cannot open --trace-spans path: " << path_);
    const bool json = path_.size() >= 5 &&
                      path_.compare(path_.size() - 5, 5, ".json") == 0;
    if (json) {
      export_chrome_trace(out, dim_, sources, wall_ms);
    } else {
      write_span_spool(out, dim_, sources);
    }
    out.flush();
    CMVRP_CHECK_MSG(out.good(), "failed writing span trace: " << path_);
    std::cout << "wrote " << records << " span records (" << sources.size()
              << " cubes, " << (json ? "chrome-trace json" : "span spool")
              << ") to " << path_ << "\n";
  }

  int dim_;
  std::string path_;
  bool flight_only_;
};

StreamConfig trace_stream_config(const Args& args, TraceReader& reader) {
  return stream_config_from_args(args, reader.dim(), [&reader] {
    return trace_demand(reader);
  });
}

// Closes the recorder, audits its incremental digests against the
// result's served/failed/shed sets (the bounded-memory run must leave a
// trail bit-identical to the in-memory digests), and prints a summary.
void finish_recording(OutcomeRecorder& recorder, const StreamResult& r) {
  recorder.close();
  CMVRP_CHECK_MSG(recorder.served_digest() == index_set_digest(r.served_jobs) &&
                      recorder.failed_digest() ==
                          index_set_digest(r.failed_jobs) &&
                      recorder.dropped_digest() ==
                          index_set_digest(r.shed_jobs),
                  "outcome trail digests diverged from the in-memory "
                  "served/failed/shed sets: "
                      << recorder.path());
  std::cout << "recorded " << recorder.recorded() << " outcomes ("
            << recorder.served_count() << " served, "
            << recorder.failed_count() << " failed, "
            << recorder.dropped_count()
            << " dropped; digests match the report) to " << recorder.path()
            << "\n";
}

// Sharded streaming engine front end, shared by `stream` (record_path
// optional, from --record) and `record` (record_path required, from
// --out). The job stream comes from (in priority order) --trace t.bin
// (bounded-memory replay off the mapping), --scenario NAME (registry),
// --file demand.txt (expanded with --order/--seed), or a synthetic
// uniform stream of --jobs arrivals on an --n x --n box.
int run_stream_serving(const Args& args, const std::string& record_path) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::optional<OutcomeRecorder> recorder;

  if (args.has("trace")) {
    TraceReader reader(args.get("trace", ""));
    CMVRP_CHECK_MSG(reader.job_count() > 0, "trace has no jobs");
    const StreamConfig cfg = trace_stream_config(args, reader);
    WallTimer timer;
    TraceReplayer replayer(reader.dim(), cfg);
    if (!record_path.empty()) {
      recorder.emplace(record_path, reader.dim());
      replayer.set_observer(&*recorder);
    }
    StatsFile stats(args);
    if (stats.get() != nullptr) replayer.set_snapshotter(stats.get());
    SpanFile spans(args, reader.dim());
    StreamResult r;
    try {
      r = replayer.replay(reader);
    } catch (...) {
      spans.dump_on_error(replayer.engine());
      throw;
    }
    const double ms = timer.elapsed_ms();
    if (recorder) finish_recording(*recorder, r);
    stats.close(args);
    const int rc = report_stream(args, cfg, r, ms);
    spans.finish(replayer.engine(), ms, rc == 0);
    return rc;
  }

  std::vector<Job> jobs;
  int dim = 2;
  std::optional<Box> scenario_region;
  if (args.has("scenario")) {
    const Scenario& sc =
        ScenarioRegistry::builtin().at(args.get("scenario", ""));
    jobs = sc.jobs();
    dim = sc.dim;
    if (sc.region.dim() == dim) scenario_region = sc.region;
  } else if (args.has("file")) {
    const DemandMap d = demand_from_args(args);
    Rng rng(seed);
    jobs = stream_from_demand(d, order_from_args(args), rng);
    dim = d.dim();
  } else {
    const std::int64_t n = args.get_int("n", 64);
    const std::int64_t count = args.get_int("jobs", 10000);
    Rng rng(seed);
    const Box box(Point{0, 0}, Point{n - 1, n - 1});
    const DemandMap d = uniform_demand(box, count, rng);
    Rng order(seed + 1);
    jobs = stream_from_demand(d, order_from_args(args), order);
  }
  CMVRP_CHECK_MSG(!jobs.empty(), "stream has no jobs");

  StreamConfig cfg = stream_config_from_args(
      args, dim, [&jobs, dim] { return demand_of_stream(jobs, dim); });
  // A registry scenario declares its region outright — use that geometry
  // for the slot table (it covers the stream by construction, even where
  // the sampled demand happens to leave gaps).
  if (scenario_region.has_value()) cfg.region = scenario_region;

  WallTimer timer;
  StreamEngine engine(dim, cfg);
  if (!record_path.empty()) {
    recorder.emplace(record_path, dim);
    engine.set_observer(&*recorder);
  }
  StatsFile stats(args);
  if (stats.get() != nullptr) engine.set_snapshotter(stats.get());
  SpanFile spans(args, dim);
  StreamResult r;
  try {
    engine.ingest(jobs);
    r = engine.finish();
  } catch (...) {
    spans.dump_on_error(engine);
    throw;
  }
  const double ms = timer.elapsed_ms();
  if (recorder) finish_recording(*recorder, r);
  stats.close(args);
  const int rc = report_stream(args, cfg, r, ms);
  spans.finish(engine, ms, rc == 0);
  return rc;
}

int cmd_stream(const Args& args) {
  CLI_USAGE_CHECK(!args.has("record") || args.get("record", "") != "true",
                  "--record needs a file path");
  return run_stream_serving(args, args.get("record", ""));
}

// `record`: serve a stream with the engine-side OutcomeRecorder attached
// — every job's outcome (served/failed + assigned cube corner) streams
// to --out during serving as a cmvrp-trace-v2 audit trail, verified
// bit-identical to the in-memory digests before the report prints.
int cmd_record(const Args& args) {
  CLI_USAGE_CHECK(args.has("out") && args.get("out", "") != "true",
                  "--out <outcome trace> is required");
  return run_stream_serving(args, args.get("out", ""));
}

// `trace gen`: run a streaming generator straight into a TraceWriter —
// the stream is never materialized, so --count can exceed memory.
int cmd_trace_gen(const Args& args) {
  CLI_USAGE_CHECK(args.has("out"), "--out <trace file> is required");
  const std::string kind = args.get("generator", "hotspot");
  const int dim = static_cast<int>(args.get_int("dim", 2));
  const std::int64_t count = args.get_int("count", 10000);
  const std::int64_t side = args.get_int("side", 4);
  const std::int64_t cubes = args.get_int("cubes", 8);
  const std::int64_t burst = args.get_int("burst", 64);
  const double sigma = args.get_double("sigma", 2.0);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  // Mirror the generator preconditions before the truncating open, so a
  // rejected command (typo'd --generator, bad --cubes, ...) cannot
  // clobber an existing trace at --out.
  CLI_USAGE_CHECK(kind == "boundary" || kind == "hotspot" ||
                      kind == "gradient",
                  "unknown --generator: " << kind
                                          << " (boundary|hotspot|gradient)");
  CLI_USAGE_CHECK(dim >= 1 && dim <= Point::kMaxDim,
                  "--dim must be in [1, " << Point::kMaxDim << "]");
  CLI_USAGE_CHECK(count >= 0, "--count must be >= 0");
  CLI_USAGE_CHECK(side >= 1, "--side must be >= 1");
  CLI_USAGE_CHECK(cubes >= 2, "--cubes must be >= 2");
  CLI_USAGE_CHECK(burst >= 1, "--burst must be >= 1");
  CLI_USAGE_CHECK(sigma >= 0.0, "--sigma must be >= 0");

  TraceWriter writer(args.get("out", ""), dim);
  const JobSink sink = [&writer](const Job& job) { writer.append(job); };
  if (kind == "boundary") {
    boundary_round_robin_stream(dim, side, cubes, count, sink);
  } else if (kind == "hotspot") {
    bursty_hotspot_stream(dim, side, cubes, count, burst, rng, sink);
  } else {
    Point hi = Point::origin(dim);
    for (int i = 0; i < dim; ++i) hi[i] = side * cubes - 1;
    drifting_gradient_stream(Box(Point::origin(dim), hi), count, sigma, rng,
                             sink);
  }
  writer.close();
  std::cout << "wrote " << writer.jobs_written() << " jobs (dim " << dim
            << ") to " << args.get("out", "") << "\n";
  return 0;
}

// Renders the (validated) header flags word with its named bits — the
// reader has already rejected unknown bits, so every set bit has a name.
std::string render_trace_flags(const TraceReader& reader) {
  std::ostringstream os;
  os << "0x" << std::hex << reader.flags() << std::dec;
  if (reader.flags() == 0) {
    os << " (none)";
    return os.str();
  }
  os << " (";
  bool first = true;
  if (reader.has_failure_events()) {
    os << "failure-events";
    first = false;
  }
  if (reader.has_outcomes()) os << (first ? "" : ", ") << "outcomes";
  os << ")";
  return os.str();
}

int cmd_trace_info(const Args& args) {
  CLI_USAGE_CHECK(args.has("file"), "--file <trace file> is required");
  TraceReader reader(args.get("file", ""));
  const std::size_t record_size =
      trace_record_size(reader.dim(), reader.version());
  Table t({"field", "value"});
  t.row().cell("path").cell(reader.path());
  t.row().cell("format").cell(reader.version() == kTraceVersionV2
                                  ? "cmvrp-trace-v2"
                                  : "cmvrp-trace-v1");
  t.row().cell("dim").cell(static_cast<std::int64_t>(reader.dim()));
  t.row().cell("records").cell(reader.job_count());
  t.row().cell("flags").cell(render_trace_flags(reader));
  // Both versions' record sizes at this dim, the file's own marked.
  const std::string v1_mark = reader.version() == kTraceVersion ? " *" : "";
  const std::string v2_mark = reader.version() == kTraceVersionV2 ? " *" : "";
  t.row().cell("record bytes (v1)").cell(
      std::to_string(trace_record_size(reader.dim(), kTraceVersion)) +
      v1_mark);
  t.row().cell("record bytes (v2)").cell(
      std::to_string(trace_record_size(reader.dim(), kTraceVersionV2)) +
      v2_mark);
  t.row().cell("file bytes").cell(static_cast<std::uint64_t>(
      kTraceHeaderSize + reader.job_count() * record_size));
  if (reader.version() == kTraceVersionV2) {
    // One bounded pass: per-kind event counts.
    std::uint64_t arrivals = 0, silent = 0, outcomes = 0;
    std::vector<TraceEvent> chunk(4096);
    while (const std::size_t n =
               reader.next_events(chunk.data(), chunk.size())) {
      for (std::size_t i = 0; i < n; ++i) {
        switch (chunk[i].kind) {
          case TraceEventKind::kArrival: ++arrivals; break;
          case TraceEventKind::kSilentDone: ++silent; break;
          case TraceEventKind::kOutcome: ++outcomes; break;
        }
      }
    }
    reader.reset();
    t.row().cell("arrival events").cell(arrivals);
    t.row().cell("silent-done events").cell(silent);
    t.row().cell("outcome events").cell(outcomes);
  }
  // What the streaming engine would build for this trace under the
  // default theory-sized config: the dense cube-slot table over the
  // demand bounding box (0 slots = pure corner-hashed overflow routing).
  const DemandMap d = trace_demand(reader);
  if (!d.empty()) {
    const OnlineConfig oc = default_online_config(d, 1);
    const CubeSlotTable table = CubeSlotTable::build(
        reader.dim(), oc.anchor, oc.cube_side, d.bounding_box());
    t.row().cell("engine cube side").cell(oc.cube_side);
    t.row().cell("engine cube slots").cell(table.size());
  }
  t.row().cell("mmap").cell(reader.mapped() ? "yes" : "no (read fallback)");
  // Schema version report: what this binary reads and what its sibling
  // subcommands write, so artifacts are self-describing end to end.
  t.row().cell("reads trace schemas").cell("cmvrp-trace-v1, cmvrp-trace-v2");
  t.row().cell("writes stream schema").cell("cmvrp-stream-v3");
  t.row().cell("writes stats schema").cell(kStatsSchema);
  t.print(std::cout);
  return 0;
}

// `trace mux`: deterministic k-way merge-replay of several traces
// (possibly different generators, same dimension) into one engine —
// merged by arrival index, re-indexed 0..N-1, bit-identical across
// thread counts, batch sizes, and the order the files are listed.
int cmd_trace_mux(const Args& args) {
  std::vector<std::string> paths(args.positional.begin() + 1,
                                 args.positional.end());
  CLI_USAGE_CHECK(paths.size() >= 2,
                  "trace mux needs >= 2 trace files: trace mux a.bin b.bin "
                  "[--flags]");
  // Dimension from the first source; config sized from the *merged*
  // demand of all sources unless --capacity/--side pin it.
  const int dim = [&paths] {
    TraceReader first(paths.front());
    return first.dim();
  }();
  const StreamConfig cfg = stream_config_from_args(args, dim, [&paths, dim] {
    DemandMap merged(dim);
    for (const auto& path : paths) {
      TraceReader reader(path);
      const DemandMap d = trace_demand(reader);
      for (const auto& p : d.support()) merged.add(p, d.at(p));
    }
    return merged;
  });

  std::optional<OutcomeRecorder> recorder;
  WallTimer timer;
  TraceMux mux(dim, cfg);
  for (const auto& path : paths) mux.add_source(path);
  if (args.has("record")) {
    CLI_USAGE_CHECK(args.get("record", "") != "true",
                    "--record needs a file path");
    recorder.emplace(args.get("record", ""), dim);
    mux.set_observer(&*recorder);
  }
  StatsFile stats(args);
  if (stats.get() != nullptr) mux.set_snapshotter(stats.get());
  SpanFile spans(args, dim);
  StreamResult r;
  try {
    r = mux.replay();
  } catch (...) {
    spans.dump_on_error(mux.engine());
    throw;
  }
  const double ms = timer.elapsed_ms();
  std::cout << "muxed " << paths.size() << " traces, " << mux.jobs_merged()
            << " jobs merged by arrival index\n";
  if (recorder) finish_recording(*recorder, r);
  stats.close(args);
  const int rc = report_stream(args, cfg, r, ms);
  spans.finish(mux.engine(), ms, rc == 0);
  return rc;
}

// `trace replay`: bounded-memory replay (default) or, with --memory, an
// in-memory serve of the same jobs — the two reports must agree on
// everything but wall time (the CI round-trip diffs them).
int cmd_trace_replay(const Args& args) {
  CLI_USAGE_CHECK(args.has("file"), "--file <trace file> is required");
  TraceReader reader(args.get("file", ""));
  CMVRP_CHECK_MSG(reader.job_count() > 0, "trace has no jobs");
  const StreamConfig cfg = trace_stream_config(args, reader);
  StatsFile stats(args);
  SpanFile spans(args, reader.dim());
  if (args.has("memory")) {
    const std::vector<Job> jobs = reader.read_all();
    WallTimer timer;
    StreamEngine engine(reader.dim(), cfg);
    if (stats.get() != nullptr) engine.set_snapshotter(stats.get());
    StreamResult r;
    try {
      engine.ingest(jobs);
      r = engine.finish();
    } catch (...) {
      spans.dump_on_error(engine);
      throw;
    }
    const double ms = timer.elapsed_ms();
    stats.close(args);
    const int rc = report_stream(args, cfg, r, ms);
    spans.finish(engine, ms, rc == 0);
    return rc;
  }
  WallTimer timer;
  TraceReplayer replayer(reader.dim(), cfg);
  if (stats.get() != nullptr) replayer.set_snapshotter(stats.get());
  StreamResult r;
  try {
    r = replayer.replay(reader);
  } catch (...) {
    spans.dump_on_error(replayer.engine());
    throw;
  }
  const double ms = timer.elapsed_ms();
  stats.close(args);
  const int rc = report_stream(args, cfg, r, ms);
  spans.finish(replayer.engine(), ms, rc == 0);
  return rc;
}

int cmd_trace(const Args& args) {
  const std::string action =
      args.positional.empty() ? "" : args.positional.front();
  if (action == "gen") return cmd_trace_gen(args);
  if (action == "info") return cmd_trace_info(args);
  if (action == "replay") return cmd_trace_replay(args);
  if (action == "mux") return cmd_trace_mux(args);
  CLI_USAGE_CHECK(
      false, "trace needs an action: trace gen|info|replay|mux [--flags]");
  return 2;
}

std::string corner_string(const Json& corner) {
  std::string out = "(";
  for (std::size_t i = 0; i < corner.size(); ++i) {
    if (i > 0) out += ",";
    out += json_number_to_string(corner.at(i).as_number());
  }
  return out + ")";
}

// Top-k cube lines by one numeric JSONL field, ties broken by corner
// (the lines arrive in ascending-corner order, so the sort is stable
// and deterministic).
std::vector<const Json*> top_cubes(const std::vector<Json>& cubes,
                                   const std::string& field,
                                   std::size_t k) {
  std::vector<const Json*> order;
  order.reserve(cubes.size());
  for (const Json& c : cubes) order.push_back(&c);
  std::stable_sort(order.begin(), order.end(),
                   [&field](const Json* a, const Json* b) {
                     return a->at(field).as_number() >
                            b->at(field).as_number();
                   });
  if (order.size() > k) order.resize(k);
  return order;
}

// `stats`: summarize a cmvrp-stats-v1 JSONL snapshot file (written by
// `stream --stats FILE`): run header, final Tier-A totals and
// messages-per-replacement, the Tier-B stage-time breakdown, and the
// top-k hotspot cubes by latency p99, backlog peak, and message volume.
int cmd_stats(const Args& args) {
  CLI_USAGE_CHECK(args.has("file"), "--file <stats.jsonl> is required");
  CLI_USAGE_CHECK(args.get_int("top", 5) >= 1,
                  "--top must be >= 1, got " << args.get_int("top", 5));
  const auto top_k = static_cast<std::size_t>(args.get_int("top", 5));
  std::ifstream in(args.get("file", ""));
  CMVRP_CHECK_MSG(in.good(), "cannot open --file " << args.get("file", ""));

  std::optional<Json> header, final_line;
  std::vector<Json> cubes;
  std::uint64_t samples = 0;
  std::string line;
  // Byte-offset accounting: malformed input (truncated lines, non-JSONL
  // files) fails with the offset of the offending line, not a bare parse
  // error — same contract as the binary trace readers.
  std::uint64_t offset = 0;
  std::uint64_t lines = 0;
  const std::string path = args.get("file", "");
  while (std::getline(in, line)) {
    const std::uint64_t line_start = offset;
    offset += line.size() + 1;  // + the newline getline consumed
    ++lines;
    if (line.empty()) continue;
    Json j;
    try {
      j = Json::parse(line);
    } catch (const std::exception& e) {
      CMVRP_CHECK_MSG(false, "not a cmvrp-stats JSONL file — line " << lines
                                 << " at byte " << line_start
                                 << " does not parse (" << e.what()
                                 << "): " << path);
    }
    CMVRP_CHECK_MSG(j.is_object() && j.contains("kind"),
                    "not a cmvrp-stats JSONL file — line "
                        << lines << " at byte " << line_start
                        << " has no \"kind\" field: " << path);
    const std::string& kind = j.at("kind").as_string();
    if (kind == "header") {
      header = std::move(j);
    } else if (kind == "sample") {
      ++samples;
    } else if (kind == "cube") {
      cubes.push_back(std::move(j));
    } else if (kind == "final") {
      final_line = std::move(j);
    }
  }
  CMVRP_CHECK_MSG(offset > 0, "stats file is empty (0 bytes): " << path);
  CMVRP_CHECK_MSG(header.has_value(),
                  "no header line in " << offset << " bytes (" << lines
                                       << " lines) — not a cmvrp-stats "
                                          "JSONL file: "
                                       << path);
  const std::string& schema = header->at("schema").as_string();
  std::cout << "stats schema: " << schema << " (reader supports "
            << kStatsSchema << ")\n";
  CMVRP_CHECK_MSG(schema == kStatsSchema,
                  "unsupported stats schema: " << schema);
  CMVRP_CHECK_MSG(final_line.has_value(),
                  "no final line after " << offset << " bytes (" << lines
                                         << " lines) — truncated? the run "
                                            "did not finish(): "
                                         << path);

  const Json& f = *final_line;
  Table t({"metric", "value"});
  t.row().cell("dim").cell(
      static_cast<std::int64_t>(header->at("dim").as_number()));
  t.row().cell("threads").cell(
      static_cast<std::int64_t>(header->at("threads").as_number()));
  t.row().cell("batch size").cell(
      static_cast<std::int64_t>(header->at("batch_size").as_number()));
  t.row().cell("counters").cell(header->at("counters").as_bool() ? "on"
                                                                 : "off");
  t.row().cell("samples / cubes").cell(std::to_string(samples) + " / " +
                                       std::to_string(cubes.size()));
  t.row().cell("jobs").cell(json_number_to_string(f.at("jobs").as_number()));
  t.row().cell("served / failed").cell(
      json_number_to_string(f.at("served").as_number()) + " / " +
      json_number_to_string(f.at("failed").as_number()));
  t.row().cell("messages (Q/R/M/H)").cell(
      json_number_to_string(f.at("msg_queries").as_number()) + " / " +
      json_number_to_string(f.at("msg_replies").as_number()) + " / " +
      json_number_to_string(f.at("msg_moves").as_number()) + " / " +
      json_number_to_string(f.at("msg_heartbeats").as_number()));
  t.row().cell("replacements").cell(
      json_number_to_string(f.at("replacements").as_number()));
  t.row().cell("messages/replacement").cell(
      f.at("messages_per_replacement").as_number());
  t.row().cell("max queries/computation").cell(
      json_number_to_string(f.at("max_queries_per_comp").as_number()));
  t.row().cell("cascade p99 / max").cell(
      json_number_to_string(f.at("cascade_p99").as_number()) + " / " +
      json_number_to_string(f.at("cascade_max").as_number()));
  // Tier-B stage breakdown (wall time; varies run to run by design).
  const char* stages[] = {"stage_route_ms", "stage_serve_ms",
                          "stage_fold_ms", "stage_monitor_ms"};
  for (const char* s : stages) t.row().cell(s).cell(f.at(s).as_number());
  t.row().cell("wall_rss_kb").cell(f.at("wall_rss_kb").as_number());
  t.print(std::cout);

  if (!cubes.empty()) {
    struct Ranking {
      const char* title;
      const char* field;
    };
    const Ranking rankings[] = {
        {"hotspot cubes by latency p99", "latency_p99"},
        {"hotspot cubes by backlog peak", "backlog_peak"},
        {"hotspot cubes by message volume", "msg_total"},
    };
    for (const Ranking& rank : rankings) {
      std::cout << "\n" << rank.title << " (top " << top_k << "):\n";
      Table ct({"cube", rank.field, "arrivals", "served", "replacements"});
      for (const Json* c : top_cubes(cubes, rank.field, top_k)) {
        ct.row()
            .cell(corner_string(c->at("corner")))
            .cell(json_number_to_string(c->at(rank.field).as_number()))
            .cell(json_number_to_string(c->at("arrivals").as_number()))
            .cell(json_number_to_string(c->at("served").as_number()))
            .cell(json_number_to_string(c->at("replacements").as_number()));
      }
      ct.print(std::cout);
    }
  }
  return 0;
}

// Rebuilds analyzer-side cube spans from a Chrome trace-event JSON
// export — the inverse of export_chrome_trace's mapping. Every event
// carries the full span record in its args block, so the round-trip is
// lossless except per-cube totals (only the global trailer has totals).
std::vector<CubeSpans> chrome_spans(const std::string& path,
                                    SpanTotals* totals) {
  std::ifstream in(path);
  CMVRP_CHECK_MSG(in.good(), "cannot open span trace: " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  CMVRP_CHECK_MSG(doc.is_array(),
                  "span trace is not a JSON event array: " << path);

  const auto u64 = [](const Json& j) {
    return static_cast<std::uint64_t>(j.as_number());
  };
  const auto actor32 = [](const Json& j) {
    const auto v = static_cast<std::int64_t>(j.as_number());
    return v < 0 ? SpanEvent::kNoActor : static_cast<std::uint32_t>(v);
  };

  std::map<std::uint64_t, CubeSpans> by_pid;  // ordered -> deterministic
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const Json& ev = doc.at(i);
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") {  // metadata: naming, wall_ms, or the totals trailer
      if (ev.at("name").as_string() == "cmvrp_span_totals" &&
          totals != nullptr) {
        const Json& a = ev.at("args");
        totals->emitted = u64(a.at("emitted"));
        totals->sampled_out = u64(a.at("sampled_out"));
        totals->ring_evicted = u64(a.at("ring_evicted"));
      }
      continue;
    }
    SpanEvent e;
    if (ph == "b") {
      e.kind = static_cast<std::uint8_t>(SpanKind::kCompStart);
    } else if (ph == "e") {
      e.kind = static_cast<std::uint8_t>(SpanKind::kCompFinish);
    } else if (ph == "s") {
      e.kind = static_cast<std::uint8_t>(SpanKind::kSend);
    } else if (ph == "f") {
      e.kind = static_cast<std::uint8_t>(SpanKind::kDeliver);
    } else if (ph == "i") {
      e.kind = static_cast<std::uint8_t>(ev.at("cat").as_string() == "cascade"
                                             ? SpanKind::kCascadeStep
                                             : SpanKind::kRelay);
    } else if (ph == "B") {
      e.kind = static_cast<std::uint8_t>(SpanKind::kServeBegin);
    } else if (ph == "E") {
      e.kind = static_cast<std::uint8_t>(SpanKind::kServeEnd);
    } else {
      CMVRP_CHECK_MSG(false, "span trace event " << i << " has unexpected "
                                                    "phase \""
                                                 << ph << "\": " << path);
    }
    const Json& a = ev.at("args");
    e.clock = static_cast<std::int64_t>(ev.at("ts").as_number());
    e.comp = u64(a.at("comp"));
    e.data = u64(a.at("data"));
    e.actor = actor32(a.at("actor"));
    e.parent = actor32(a.at("parent"));
    e.hop = static_cast<std::uint16_t>(u64(a.at("hop")));
    e.aux = static_cast<std::uint8_t>(u64(a.at("aux")));
    const std::uint64_t pid = u64(ev.at("pid"));
    CubeSpans& cube = by_pid[pid];
    cube.pid = pid;
    cube.events.push_back(e);
  }
  std::vector<CubeSpans> cubes;
  cubes.reserve(by_pid.size());
  for (auto& [pid, cube] : by_pid) cubes.push_back(std::move(cube));
  return cubes;
}

// `prof`: the span-trace analyzer (src/obs/prof.h). Reads a
// --trace-spans export — binary spool or Chrome JSON — and reports the
// Algorithm 2 flood shape: query fan-out breadth by hop, per-computation
// critical-path percentiles on the protocol clock, the top-K widest
// floods (the query-batching targets), and the query -> computation
// attribution ratio the acceptance bar asserts.
int cmd_prof(const Args& args) {
  CLI_USAGE_CHECK(args.has("file") && args.get("file", "") != "true",
                  "--file <spans.bin|spans.json> is required");
  const std::string path = args.get("file", "");
  const std::int64_t top = args.get_int("top", 5);
  CLI_USAGE_CHECK(top >= 1, "--top must be >= 1, got " << top);

  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  std::vector<CubeSpans> cubes;
  SpanTotals json_totals;
  if (json) {
    cubes = chrome_spans(path, &json_totals);
  } else {
    SpanSpool spool = read_span_spool(path);
    cubes = std::move(spool.cubes);
  }
  ProfReport rep = profile_spans(cubes, static_cast<std::size_t>(top));
  // Per-cube totals only exist in the spool; the Chrome export carries
  // them in its trailer instead.
  if (json) rep.totals = json_totals;

  Table t({"metric", "value"});
  t.row().cell("file").cell(path + (json ? " (chrome json)" : " (spool)"));
  t.row().cell("cubes").cell(static_cast<std::uint64_t>(rep.cubes));
  t.row().cell("span records").cell(rep.events);
  t.row().cell("emitted / sampled out / evicted").cell(
      std::to_string(rep.totals.emitted) + " / " +
      std::to_string(rep.totals.sampled_out) + " / " +
      std::to_string(rep.totals.ring_evicted));
  t.row().cell("computations").cell(rep.comps);
  t.row().cell("finished / found a child").cell(
      std::to_string(rep.comps_finished) + " / " +
      std::to_string(rep.comps_found));
  t.row().cell("query sends").cell(rep.query_sends);
  t.row().cell("attributed to a computation").cell(rep.attributed_queries);
  t.row().cell("attribution ratio").cell(rep.attribution_ratio());
  t.row().cell("replacements (cascade steps)").cell(rep.replacements);
  t.row().cell("fan-out depth p50 / p99 / max").cell(
      json_number_to_string(rep.depth.percentile(50.0)) + " / " +
      json_number_to_string(rep.depth.percentile(99.0)) + " / " +
      json_number_to_string(rep.depth.observed_max()));
  t.row().cell("critical path p50 / p99 / max").cell(
      json_number_to_string(rep.critical.percentile(50.0)) + " / " +
      json_number_to_string(rep.critical.percentile(99.0)) + " / " +
      json_number_to_string(rep.critical.observed_max()));
  t.row().cell("flood width p50 / p99 / max").cell(
      json_number_to_string(rep.flood_width.percentile(50.0)) + " / " +
      json_number_to_string(rep.flood_width.percentile(99.0)) + " / " +
      json_number_to_string(rep.flood_width.observed_max()));
  t.print(std::cout);

  // Lemma 3.3.1's flood tree, measured: how many queries travel at each
  // hop of the Algorithm 2 fan-out (hop 1 = the initiator's own sends).
  bool any_hop = false;
  for (std::size_t h = 1; h < rep.breadth_by_hop.size(); ++h)
    any_hop = any_hop || rep.breadth_by_hop[h] > 0;
  if (any_hop) {
    std::cout << "\nquery fan-out breadth by hop:\n";
    Table bt({"hop", "query sends"});
    for (std::size_t h = 1; h < rep.breadth_by_hop.size(); ++h)
      bt.row()
          .cell(static_cast<std::uint64_t>(h))
          .cell(rep.breadth_by_hop[h]);
    bt.print(std::cout);
  }

  if (!rep.widest.empty()) {
    std::cout << "\nwidest floods (top " << top << " by query count):\n";
    Table wt({"pid", "comp", "queries", "relays", "depth", "critical path",
              "state"});
    for (const CompProfile& p : rep.widest) {
      wt.row()
          .cell(p.pid)
          .cell(p.comp)
          .cell(p.queries)
          .cell(p.relays)
          .cell(static_cast<std::uint64_t>(p.depth))
          .cell(p.critical_path)
          .cell(p.finished ? (p.found ? "found" : "no child") : "open");
    }
    wt.print(std::cout);
  }
  return 0;
}

// Reads a whole artifact file; check_error (exit 1) when unreadable —
// a missing baseline or input is a data failure, not a usage slip.
std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CMVRP_CHECK_MSG(in.good(), "cannot open " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Comparison thresholds shared by `compare` and `bench --baseline`.
CompareOptions compare_options_from_args(const Args& args) {
  CompareOptions opt;
  opt.warn_ratio = args.get_double("warn-ratio", opt.warn_ratio);
  opt.fail_ratio = args.get_double("fail-ratio", opt.fail_ratio);
  opt.min_wall_ms = args.get_double("min-wall-ms", opt.min_wall_ms);
  opt.noise_sigmas = args.get_double("noise-sigmas", opt.noise_sigmas);
  opt.ignore = split_commas(args.get("ignore", ""));
  CLI_USAGE_CHECK(opt.warn_ratio >= 1.0,
                  "--warn-ratio must be >= 1, got " << opt.warn_ratio);
  CLI_USAGE_CHECK(opt.fail_ratio == 0.0 || opt.fail_ratio >= 1.0,
                  "--fail-ratio must be 0 (wall never fails) or >= 1, got "
                      << opt.fail_ratio);
  CLI_USAGE_CHECK(opt.min_wall_ms >= 0.0,
                  "--min-wall-ms must be >= 0, got " << opt.min_wall_ms);
  CLI_USAGE_CHECK(opt.noise_sigmas >= 0.0,
                  "--noise-sigmas must be >= 0, got " << opt.noise_sigmas);
  return opt;
}

void print_compare_report(const CompareReport& rep, const std::string& a,
                          const std::string& b) {
  Table t({"metric", "value"});
  t.row().cell("kind").cell(compare_kind_name(rep.kind));
  t.row().cell("A").cell(a);
  t.row().cell("B").cell(b);
  t.row().cell("fields compared").cell(rep.fields_compared);
  t.row().cell("deterministic fields").cell(rep.deterministic_fields);
  t.row().cell("wall fields").cell(rep.wall_fields);
  t.row().cell("deterministic drift").cell(rep.drift);
  t.row().cell("wall warns").cell(rep.warns);
  t.row().cell("wall fails").cell(rep.wall_fails);
  t.row().cell("context diffs").cell(rep.context_diffs);
  if (!rep.worst_wall_field.empty())
    t.row().cell("worst wall regression").cell(
        rep.worst_wall_field + " x" +
        json_number_to_string(rep.worst_wall_ratio));
  t.print(std::cout);

  if (!rep.diffs.empty()) {
    std::cout << "\nper-field verdicts";
    if (rep.diffs_truncated > 0)
      std::cout << " (first " << rep.diffs.size() << "; "
                << rep.diffs_truncated << " more suppressed)";
    std::cout << ":\n";
    Table dt({"path", "class", "verdict", "A", "B", "note"});
    for (const FieldDiff& d : rep.diffs)
      dt.row()
          .cell(d.path)
          .cell(field_class_name(d.cls))
          .cell(field_verdict_name(d.verdict))
          .cell(d.a)
          .cell(d.b)
          .cell(d.ratio > 0.0
                    ? "x" + json_number_to_string(d.ratio) + " " + d.note
                    : d.note);
    dt.print(std::cout);
  }
  std::cout << (rep.clean()
                    ? "\nclean: deterministic fields agree\n"
                    : "\nREGRESSION: deterministic drift or wall failure "
                      "detected\n");
}

void write_diff_json(const CompareReport& rep, const std::string& path,
                     const std::string& a, const std::string& b) {
  std::ofstream out(path);
  CMVRP_CHECK_MSG(out.good(), "cannot open diff report path: " << path);
  out << rep.to_json(a, b).dump(2) << "\n";
  out.flush();
  CMVRP_CHECK_MSG(out.good(), "failed writing diff report: " << path);
}

// `compare`: the differential-observability front end (obs/compare.h).
// Exit 0 clean, 1 drift/regression or unreadable input, 2 usage.
int cmd_compare(const Args& args) {
  CLI_USAGE_CHECK(args.positional.size() == 2,
                  "compare needs exactly two artifacts: compare A B "
                  "[--kind auto|stream|stats|bench|spans] [--warn-ratio R] "
                  "[--fail-ratio R] [--min-wall-ms M] [--noise-sigmas S] "
                  "[--ignore k1,k2] [--json diff.json]; got "
                      << args.positional.size() << " positional arguments");
  for (const char* key : {"kind", "warn-ratio", "fail-ratio", "min-wall-ms",
                          "noise-sigmas", "ignore", "json"}) {
    CLI_USAGE_CHECK(!args.has(key) || args.get(key, "") != "true",
                    "--" << key << " needs a value");
  }
  const CompareKind kind = parse_compare_kind(args.get("kind", "auto"));
  const CompareOptions opt = compare_options_from_args(args);
  const std::string& a = args.positional[0];
  const std::string& b = args.positional[1];
  const CompareReport rep = compare_artifacts(read_text_file(a),
                                              read_text_file(b), kind, opt,
                                              a, b);
  print_compare_report(rep, a, b);
  if (args.has("json")) write_diff_json(rep, args.get("json", ""), a, b);
  return rep.exit_code();
}

int cmd_bench(const Args& args) {
  register_builtin_suites();
  // parse_args maps a valueless flag to the sentinel "true"; every bench
  // flag except --list/--scenarios carries a real value, so catch the
  // slip here instead of silently writing a file named "true".
  for (const char* key : {"suite", "reps", "warmup", "filter", "json",
                          "baseline", "diff-json"}) {
    CLI_USAGE_CHECK(!args.has(key) || args.get(key, "") != "true",
                    "--" << key << " needs a value");
  }
  if (args.has("list")) {
    Table t({"suite", "description"});
    for (const Suite* s : all_suites()) t.row().cell(s->name).cell(s->description);
    t.print(std::cout);
    return 0;
  }
  if (args.has("scenarios")) {
    Table t({"scenario", "generator", "description"});
    for (const Scenario* s :
         ScenarioRegistry::builtin().match(args.get("filter", "")))
      t.row().cell(s->name).cell(s->generator).cell(s->description);
    t.print(std::cout);
    return 0;
  }
  CLI_USAGE_CHECK(args.has("suite"),
                  "--suite <name> is required (or --list / --scenarios)");
  const std::string suite_name = args.get("suite", "");
  CLI_USAGE_CHECK(find_suite(suite_name) != nullptr,
                  "unknown --suite: " << suite_name << " (try --list)");
  RunOptions options;
  options.reps = static_cast<int>(args.get_int("reps", 1));
  options.warmup = static_cast<int>(args.get_int("warmup", 0));
  options.filter = args.get("filter", "");
  options.json_path = args.get("json", "");
  if (!args.has("baseline"))
    return run_suite(suite_name, options, std::cout);

  // --baseline FILE: run the suite, then diff the fresh cmvrp-bench-v1
  // document against the committed baseline — deterministic metric drift
  // fails (exit 1), wall time warns unless --fail-ratio gates it. The
  // run's own exit (a claim failure) still dominates.
  Json fresh;
  const int run_rc = run_suite(suite_name, options, std::cout, &fresh);
  const std::string baseline_path = args.get("baseline", "");
  const Json baseline = Json::parse(read_text_file(baseline_path));
  const CompareOptions opt = compare_options_from_args(args);
  const CompareReport rep = compare_bench_runs(baseline, fresh, opt);
  std::cout << "\nbaseline comparison (" << baseline_path
            << " -> fresh run):\n";
  print_compare_report(rep, baseline_path, "<fresh run>");
  if (args.has("diff-json"))
    write_diff_json(rep, args.get("diff-json", ""), baseline_path,
                    "<fresh run>");
  return run_rc != 0 ? run_rc : rep.exit_code();
}

int usage(std::ostream& os, int exit_code) {
  os << "usage: cmvrp "
         "<bounds|plan|online|won|gen|fig41|stream|record|trace|stats|prof|"
         "compare|bench> [--flags]\n"
         "  bounds --file d.txt            offline bounds (Thm 1.4.1)\n"
         "  plan   --file d.txt [--ascii]  Lemma 2.2.5 plan + verification\n"
         "  online --file d.txt [--capacity W] [--order o] [--seed s]\n"
         "  won    --file d.txt [--tol t]  bisect empirical Won\n"
         "  gen    --workload k [--n N] [--count C] [--d D] [--seed s]\n"
         "  fig41  --r1 R [--r2 R2]        Chapter 4 counterexample\n"
         "  stream [--scenario name | --file d.txt | --trace t.bin]\n"
         "         [--threads T] [--batch B] [--jobs J] [--n N] [--order o]\n"
         "         [--capacity W] [--side S] [--seed s] [--json out]\n"
         "         [--record o.trace] [--monitor-stride K]\n"
         "         [--admission unbounded|reject|shed] [--queue-limit Q]\n"
         "         [--service-ticks D] [--sample-stride K]\n"
         "         [--obs] [--stats s.jsonl] [--stats-stride K]\n"
         "         [--trace-spans f.json|f.bin] [--span-sample K]\n"
         "         [--flight N]\n"
         "                                 sharded streaming; report schema\n"
         "                                 cmvrp-stream-v3. --obs turns on\n"
         "                                 Tier-A counters (per-computation\n"
         "                                 query max, cascade histogram,\n"
         "                                 admission gauges); --stats streams\n"
         "                                 cmvrp-stats-v1 JSONL snapshots\n"
         "                                 every --stats-stride batches\n"
         "                                 (default 16); --trace-spans\n"
         "                                 exports Tier-C causal spans\n"
         "                                 (.json = Chrome/Perfetto trace\n"
         "                                 events, else the binary spool\n"
         "                                 `prof` reads), --span-sample K\n"
         "                                 traces every K-th computation per\n"
         "                                 cube, --flight N keeps the last N\n"
         "                                 records per cube and dumps only\n"
         "                                 on failure\n"
         "  record --out o.trace [stream flags]\n"
         "                                 serve + stream every outcome to a\n"
         "                                 v2 audit trace (digest-verified)\n"
         "  trace gen --out t.bin [--generator boundary|hotspot|gradient]\n"
         "            [--dim L] [--count N] [--side S] [--cubes C]\n"
         "            [--burst B] [--sigma X] [--seed s]\n"
         "                                 stream a generator into a trace\n"
         "  trace info --file t.bin        print + validate header fields\n"
         "                                 (flags bits, v1/v2 record sizes,\n"
         "                                 v2 event-kind counts, and the\n"
         "                                 schema versions this binary\n"
         "                                 reads/writes)\n"
         "  trace replay --file t.bin [--threads T] [--batch B] [--memory]\n"
         "               [--capacity W] [--side S] [--seed s] [--json out]\n"
         "               [--obs] [--stats s.jsonl] [--stats-stride K]\n"
         "               [--trace-spans f] [--span-sample K] [--flight N]\n"
         "                                 bounded-memory replay (or\n"
         "                                 --memory: in-memory reference)\n"
         "  trace mux t1.bin t2.bin ... [--threads T] [--batch B]\n"
         "            [--record o.trace] [--json out] [--obs]\n"
         "            [--stats s.jsonl] [--stats-stride K]\n"
         "            [--trace-spans f] [--span-sample K] [--flight N]\n"
         "                                 merge k traces by arrival index\n"
         "                                 into one engine (deterministic)\n"
         "  stats  --file s.jsonl [--top K]\n"
         "                                 summarize a cmvrp-stats-v1 JSONL\n"
         "                                 snapshot: totals, stage breakdown,\n"
         "                                 top-K hotspot cubes by p99 /\n"
         "                                 backlog / messages\n"
         "  prof   --file spans.bin|spans.json [--top K]\n"
         "                                 analyze a --trace-spans export:\n"
         "                                 query fan-out breadth by hop,\n"
         "                                 critical-path percentiles on the\n"
         "                                 protocol clock, top-K widest\n"
         "                                 floods, attribution ratio\n"
         "  compare A B [--kind auto|stream|stats|bench|spans]\n"
         "          [--warn-ratio R] [--fail-ratio R] [--min-wall-ms M]\n"
         "          [--noise-sigmas S] [--ignore k1,k2] [--json diff.json]\n"
         "                                 structural artifact diff: fields\n"
         "                                 classified by rule (identity |\n"
         "                                 deterministic | wall | context);\n"
         "                                 deterministic drift exits 1, wall\n"
         "                                 time ratio-compares (warn-only\n"
         "                                 unless --fail-ratio >= 1), emits\n"
         "                                 cmvrp-diff-v1 with --json\n"
         "  bench  --suite s [--reps N] [--warmup N] [--filter f]\n"
         "         [--json out.json]       run an experiment suite\n"
         "  bench  --suite s --baseline bench/baselines/B.json\n"
         "         [--diff-json d.json] [compare thresholds]\n"
         "                                 run + diff against a committed\n"
         "                                 cmvrp-bench-v1 baseline (the\n"
         "                                 regression gate CI runs)\n"
         "  bench  --list | --scenarios    list suites / workload scenarios\n"
         "exit codes (all subcommands): 0 ok, 1 data/drift failure, 2 usage\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "help" || args.command == "--help" ||
        args.command == "-h")
      return usage(std::cout, 0);
    if (args.command == "bounds") return cmd_bounds(args);
    if (args.command == "plan") return cmd_plan(args);
    if (args.command == "online") return cmd_online(args);
    if (args.command == "won") return cmd_won(args);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "fig41") return cmd_fig41(args);
    if (args.command == "stream") return cmd_stream(args);
    if (args.command == "record") return cmd_record(args);
    if (args.command == "trace") return cmd_trace(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "prof") return cmd_prof(args);
    if (args.command == "compare") return cmd_compare(args);
    if (args.command == "bench") return cmd_bench(args);
    return usage(std::cerr, 2);
  } catch (const usage_error& e) {  // malformed flags: exit 2
    std::cerr << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {  // check_error etc.: data failure
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
