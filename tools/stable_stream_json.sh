#!/usr/bin/env sh
# Strip the wall-clock fields from a cmvrp_cli JSON report, leaving only
# the deterministic lines — so two runs of the same workload can be
# diffed byte for byte under the engine's bit-identical contract.
#
# The exclusion list is the Tier-A/Tier-B naming convention from
# src/obs/: every nondeterministic key ends in `_ms` (wall_ms,
# routing_ms, the stage_*_ms spans), starts with `wall_` (wall_rss_kb),
# or is the derived rate jobs_per_sec. Everything else in the report —
# counts, digests, counter totals, messages_per_replacement — is a pure
# function of the arrival sequence and seed.
#
# Usage: stable_stream_json.sh report.json [extra-pattern ...]
# Extra patterns become additional grep -e exclusions (the record round
# trip excludes cube_slots this way: the two runs size the slot table
# from different geometry by design).
set -eu
file="$1"
shift
excludes="-e _ms -e \"wall_ -e jobs_per_sec"
for extra in "$@"; do
  excludes="$excludes -e $extra"
done
# shellcheck disable=SC2086
exec grep -v $excludes "$file"
